package delaunay

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"voronet/internal/geom"
)

func TestDuplicateErrorMessage(t *testing.T) {
	err := &DuplicateError{Existing: 7}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
	if !errors.Is(err, ErrDuplicate) {
		t.Fatal("DuplicateError must match ErrDuplicate")
	}
}

func TestNumFiniteFacesEuler(t *testing.T) {
	// For n sites with h of them on the hull: F = 2n - h - 2 finite faces.
	tr := New()
	rng := rand.New(rand.NewSource(21))
	n := 0
	for n < 500 {
		if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex); err == nil {
			n++
		}
	}
	h := 0
	tr.ForEachSite(func(v VertexID, _ geom.Point) bool {
		if tr.IsHullVertex(v) {
			h++
		}
		return true
	})
	if want := 2*n - h - 2; tr.NumFiniteFaces() != want {
		t.Fatalf("finite faces %d, want %d (n=%d h=%d)", tr.NumFiniteFaces(), want, n, h)
	}
}

func TestIsFinite(t *testing.T) {
	if IsFinite(Infinite) {
		t.Fatal("Infinite must not be finite")
	}
	if !IsFinite(3) {
		t.Fatal("3 must be finite")
	}
}

func TestFacesAroundCompleteFan(t *testing.T) {
	tr := New()
	mustInsert(t, tr, geom.Pt(0, 0))
	mustInsert(t, tr, geom.Pt(1, 0))
	mustInsert(t, tr, geom.Pt(1, 1))
	mustInsert(t, tr, geom.Pt(0, 1))
	c := mustInsert(t, tr, geom.Pt(0.5, 0.5))

	// The interior site's fan has exactly Degree faces, all finite, all
	// starting with the site itself.
	count := 0
	tr.FacesAround(c, func(a, b, d VertexID) bool {
		if a != c {
			t.Fatalf("fan face does not start at the site: %v", a)
		}
		if b == Infinite || d == Infinite {
			t.Fatal("interior site has an infinite face")
		}
		count++
		return true
	})
	if count != tr.Degree(c) {
		t.Fatalf("fan count %d, degree %d", count, tr.Degree(c))
	}

	// Early termination.
	count = 0
	tr.FacesAround(c, func(_, _, _ VertexID) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}

	// Hull site fans include infinite faces.
	hull := VertexID(1)
	sawInfinite := false
	tr.FacesAround(hull, func(_, b, d VertexID) bool {
		if b == Infinite || d == Infinite {
			sawInfinite = true
		}
		return true
	})
	if !sawInfinite {
		t.Fatal("hull fan must include infinite faces")
	}
}

func TestLocateExhaustiveAgreesWithWalk(t *testing.T) {
	// Drive the O(n) fallback directly and require the same answers as the
	// walk for every location kind.
	tr := New()
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex)
	}
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
		a := tr.Locate(p, NoVertex)
		b := tr.locateExhaustive(p, true)
		if a.Kind != b.Kind {
			t.Fatalf("kind mismatch at %v: walk %v, scan %v", p, a.Kind, b.Kind)
		}
		if a.Kind == LocFace && a.Face != b.Face {
			t.Fatalf("face mismatch at %v", p)
		}
		if a.Kind == LocVertex && a.Vertex != b.Vertex {
			t.Fatalf("vertex mismatch at %v", p)
		}
	}
	// Exact-site queries.
	tr.ForEachSite(func(v VertexID, p geom.Point) bool {
		loc := tr.locateExhaustive(p, true)
		if loc.Kind != LocVertex || loc.Vertex != v {
			t.Fatalf("exhaustive locate missed site %d", v)
		}
		return v%20 != 0 // sample
	})
}

func TestQuickDelaunayInvariant(t *testing.T) {
	// Property: any batch of random points yields a structure that passes
	// full validation, has symmetric neighbourhoods, and its neighbour
	// counts obey planarity (sum of degrees = 2 * edges <= 2 * (3n - 6)).
	f := func(seed int64, sizes uint8) bool {
		n := 3 + int(sizes%60)
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ids := make([]VertexID, 0, n)
		for len(ids) < n {
			// Quantised coordinates provoke collinear/cocircular cases.
			p := geom.Pt(float64(rng.Intn(32))/32+rng.Float64()*1e-9,
				float64(rng.Intn(32))/32+rng.Float64()*1e-9)
			if v, err := tr.Insert(p, NoVertex); err == nil {
				ids = append(ids, v)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		degSum := 0
		for _, v := range ids {
			nb := tr.Neighbors(v, nil)
			degSum += len(nb)
			for _, u := range nb {
				back := tr.Neighbors(u, nil)
				found := false
				for _, w := range back {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					t.Logf("asymmetric edge %d-%d", v, u)
					return false
				}
			}
		}
		return tr.Dimension() < 2 || degSum <= 2*(3*n-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertRemoveRoundTrip(t *testing.T) {
	// Property: inserting a point and removing it restores a structure
	// with identical neighbour sets for all pre-existing sites.
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		var ids []VertexID
		for len(ids) < 30 {
			if v, err := tr.Insert(geom.Pt(r.Float64(), r.Float64()), NoVertex); err == nil {
				ids = append(ids, v)
			}
		}
		before := map[VertexID][]VertexID{}
		for _, v := range ids {
			before[v] = append([]VertexID(nil), tr.Neighbors(v, nil)...)
		}
		v, err := tr.Insert(geom.Pt(r.Float64(), r.Float64()), NoVertex)
		if err != nil {
			return true
		}
		if err := tr.Remove(v); err != nil {
			t.Logf("remove: %v", err)
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		for _, u := range ids {
			after := tr.Neighbors(u, nil)
			if len(after) != len(before[u]) {
				t.Logf("site %d degree changed %d -> %d", u, len(before[u]), len(after))
				return false
			}
			set := map[VertexID]bool{}
			for _, w := range before[u] {
				set[w] = true
			}
			for _, w := range after {
				if !set[w] {
					t.Logf("site %d gained neighbour %d", u, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRebuildFallbackCounter(t *testing.T) {
	// The rebuild fallback must not fire on ordinary workloads.
	start := RebuildCount
	tr := New()
	rng := rand.New(rand.NewSource(24))
	var ids []VertexID
	for len(ids) < 300 {
		if v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex); err == nil {
			ids = append(ids, v)
		}
	}
	for _, v := range ids[:200] {
		if err := tr.Remove(v); err != nil {
			t.Fatal(err)
		}
	}
	if RebuildCount != start {
		t.Fatalf("rebuild fallback fired %d times on a random workload", RebuildCount-start)
	}
}
