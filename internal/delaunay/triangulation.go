// Package delaunay implements a fully dynamic Delaunay triangulation of the
// plane: incremental insertion, vertex removal, point location and
// nearest-site queries, all exact.
//
// This is the geometric substrate of VoroNet (§2.2 of the paper): the
// Voronoi neighbours vn(o) of an object are exactly its Delaunay
// neighbours, and every protocol operation (AddVoronoiRegion,
// RemoveVoronoiRegion, DistanceToRegion) reduces to operations here.
//
// Design notes:
//
//   - The triangulation is closed into a combinatorial sphere by a single
//     symbolic vertex at infinity (Infinite). Every convex-hull edge is
//     incident to one finite and one "infinite" face. Unlike a far-away
//     super-triangle, this represents the exact Delaunay triangulation of
//     the sites — no spurious or missing hull adjacencies, which matters
//     because neighbour sets are protocol state in VoroNet.
//   - All predicates are exact (internal/geom), so degenerate inputs
//     (duplicate, collinear, co-circular sites) never corrupt the topology.
//     This is the same robustness goal the paper imports from Sugihara–Iri
//     [13], achieved with exact adaptive arithmetic instead.
//   - Fewer than three non-collinear sites cannot be represented as a
//     2-D triangulation; the structure transparently runs in a degenerate
//     low-dimension mode (sorted collinear chain) and upgrades/downgrades
//     as sites come and go.
//
// The structure is not safe for concurrent mutation; the VoroNet simulator
// drives one triangulation per overlay from a single goroutine.
package delaunay

import (
	"errors"
	"fmt"
	"math/rand"

	"voronet/internal/geom"
)

// VertexID identifies a site. IDs are stable for the lifetime of the site
// but are recycled after Remove; callers must not retain IDs of removed
// sites.
type VertexID int32

// FaceID identifies a triangle (possibly infinite). Face IDs are internal
// and recycled aggressively; they are exposed only for iteration.
type FaceID int32

// Infinite is the symbolic vertex at infinity closing the triangulation
// into a sphere. It is never returned as a neighbour.
const Infinite VertexID = 0

// NoVertex and NoFace are sentinel values.
const (
	NoVertex VertexID = -1
	NoFace   FaceID   = -1
)

// Errors returned by Insert and Remove.
var (
	// ErrDuplicate reports an insertion at the exact position of an
	// existing site. The existing site's ID accompanies it via
	// DuplicateError.
	ErrDuplicate = errors.New("delaunay: duplicate site")
	// ErrNotFound reports an operation on a dead or out-of-range vertex.
	ErrNotFound = errors.New("delaunay: no such site")
)

// DuplicateError wraps ErrDuplicate with the existing site.
type DuplicateError struct {
	Existing VertexID
}

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("delaunay: duplicate site (existing vertex %d)", e.Existing)
}

// Is reports whether target is ErrDuplicate.
func (e *DuplicateError) Is(target error) bool { return target == ErrDuplicate }

type vertex struct {
	p     geom.Point
	face  FaceID // some incident face (valid in dim 2)
	alive bool
}

type face struct {
	v     [3]VertexID
	n     [3]FaceID // n[i] is the neighbour opposite v[i]
	alive bool
	mark  uint32 // conflict-BFS epoch stamp
}

// Triangulation is a dynamic Delaunay triangulation. The zero value is not
// usable; call New.
type Triangulation struct {
	verts     []vertex
	faces     []face
	freeVerts []VertexID
	freeFaces []FaceID

	nFinite      int // live finite vertices
	nFiniteFaces int // live finite faces

	// dim is the affine dimension of the current site set: -1 empty,
	// 0 one site, 1 collinear sites, 2 full triangulation.
	dim int
	// line holds the sites in lexicographic order while dim < 2.
	line []VertexID

	lastFace FaceID // walk hint
	epoch    uint32 // conflict-BFS stamp epoch
	rng      *rand.Rand

	// scratch buffers reused across operations.
	cavity   []FaceID
	boundary []bEdge
	starF    []FaceID
	starV    []VertexID
}

type bEdge struct {
	a, b    VertexID // directed edge, cavity on the left
	out     FaceID   // face outside the cavity across (a,b)
	outIdx  int      // index of this edge in out (opposite-vertex index)
	newFace FaceID   // face created for this edge (filled during stitching)
}

// New returns an empty triangulation.
func New() *Triangulation {
	t := &Triangulation{
		dim: -1,
		rng: rand.New(rand.NewSource(0x5eed)),
	}
	// Vertex 0 is the infinite vertex.
	t.verts = append(t.verts, vertex{alive: true, face: NoFace})
	t.lastFace = NoFace
	return t
}

// NumSites returns the number of live finite sites.
func (t *Triangulation) NumSites() int { return t.nFinite }

// NumFiniteFaces returns the number of live finite faces.
func (t *Triangulation) NumFiniteFaces() int { return t.nFiniteFaces }

// Dimension returns the affine dimension of the site set: -1 when empty,
// 0 for a single site, 1 while all sites are collinear, 2 otherwise.
func (t *Triangulation) Dimension() int { return t.dim }

// Point returns the position of v. It panics if v is the infinite vertex
// and returns ErrNotFound-adjacent zero value for dead vertices; callers
// should use Alive for validation.
func (t *Triangulation) Point(v VertexID) geom.Point {
	return t.verts[v].p
}

// Alive reports whether v is a live finite site.
func (t *Triangulation) Alive(v VertexID) bool {
	return v > 0 && int(v) < len(t.verts) && t.verts[v].alive
}

// IsFinite reports whether v is not the infinite vertex.
func IsFinite(v VertexID) bool { return v != Infinite }

// newVertex allocates (or recycles) a vertex record.
func (t *Triangulation) newVertex(p geom.Point) VertexID {
	if n := len(t.freeVerts); n > 0 {
		id := t.freeVerts[n-1]
		t.freeVerts = t.freeVerts[:n-1]
		t.verts[id] = vertex{p: p, face: NoFace, alive: true}
		return id
	}
	t.verts = append(t.verts, vertex{p: p, face: NoFace, alive: true})
	return VertexID(len(t.verts) - 1)
}

func (t *Triangulation) freeVertex(v VertexID) {
	t.verts[v].alive = false
	t.verts[v].face = NoFace
	t.freeVerts = append(t.freeVerts, v)
}

// newFace allocates (or recycles) a face record.
func (t *Triangulation) newFace(a, b, c VertexID) FaceID {
	f := face{v: [3]VertexID{a, b, c}, n: [3]FaceID{NoFace, NoFace, NoFace}, alive: true}
	var id FaceID
	if n := len(t.freeFaces); n > 0 {
		id = t.freeFaces[n-1]
		t.freeFaces = t.freeFaces[:n-1]
		f.mark = t.faces[id].mark
		t.faces[id] = f
	} else {
		t.faces = append(t.faces, f)
		id = FaceID(len(t.faces) - 1)
	}
	if a == Infinite || b == Infinite || c == Infinite {
		// infinite face
	} else {
		t.nFiniteFaces++
	}
	// Make the incidence pointers of its vertices valid.
	t.verts[a].face = id
	t.verts[b].face = id
	t.verts[c].face = id
	return id
}

func (t *Triangulation) freeFace(f FaceID) {
	if t.isFiniteFace(f) {
		t.nFiniteFaces--
	}
	t.faces[f].alive = false
	t.freeFaces = append(t.freeFaces, f)
}

func (t *Triangulation) isFiniteFace(f FaceID) bool {
	fc := &t.faces[f]
	return fc.v[0] != Infinite && fc.v[1] != Infinite && fc.v[2] != Infinite
}

// vertIndex returns the index of v in face f, or -1.
func (t *Triangulation) vertIndex(f FaceID, v VertexID) int {
	fc := &t.faces[f]
	for i := 0; i < 3; i++ {
		if fc.v[i] == v {
			return i
		}
	}
	return -1
}

// neighborIndex returns the index k such that t.faces[g].n[k] == f.
func (t *Triangulation) neighborIndex(g, f FaceID) int {
	gc := &t.faces[g]
	for k := 0; k < 3; k++ {
		if gc.n[k] == f {
			return k
		}
	}
	panic("delaunay: neighbour inconsistency")
}

// link sets mutual adjacency: f across its edge fi faces g across its edge gi.
func (t *Triangulation) link(f FaceID, fi int, g FaceID, gi int) {
	t.faces[f].n[fi] = g
	t.faces[g].n[gi] = f
}

// ccwNextAround returns the next face counterclockwise around vertex v
// starting from face f (which must contain v).
func (t *Triangulation) ccwNextAround(v VertexID, f FaceID) FaceID {
	i := t.vertIndex(f, v)
	return t.faces[f].n[(i+1)%3]
}

// cwNextAround returns the next face clockwise around vertex v.
func (t *Triangulation) cwNextAround(v VertexID, f FaceID) FaceID {
	i := t.vertIndex(f, v)
	return t.faces[f].n[(i+2)%3]
}

// Neighbors appends the finite Delaunay neighbours of v to buf and returns
// it. In VoroNet terms this is vn(o), the Voronoi-neighbour view of an
// object. The neighbours are in counterclockwise order around v (for
// dimension 2).
func (t *Triangulation) Neighbors(v VertexID, buf []VertexID) []VertexID {
	buf = buf[:0]
	if !t.Alive(v) {
		return buf
	}
	if t.dim < 2 {
		idx := t.lineIndex(v)
		if idx > 0 {
			buf = append(buf, t.line[idx-1])
		}
		if idx >= 0 && idx+1 < len(t.line) {
			buf = append(buf, t.line[idx+1])
		}
		return buf
	}
	start := t.verts[v].face
	f := start
	for {
		i := t.vertIndex(f, v)
		u := t.faces[f].v[(i+1)%3]
		if u != Infinite {
			buf = append(buf, u)
		}
		f = t.ccwNextAround(v, f)
		if f == start {
			break
		}
	}
	return buf
}

// Degree returns the number of finite neighbours of v.
func (t *Triangulation) Degree(v VertexID) int {
	return len(t.Neighbors(v, nil))
}

// IsHullVertex reports whether v lies on the convex hull of the sites.
func (t *Triangulation) IsHullVertex(v VertexID) bool {
	if !t.Alive(v) {
		return false
	}
	if t.dim < 2 {
		return true
	}
	start := t.verts[v].face
	f := start
	for {
		i := t.vertIndex(f, v)
		fc := &t.faces[f]
		if fc.v[(i+1)%3] == Infinite || fc.v[(i+2)%3] == Infinite {
			return true
		}
		f = t.ccwNextAround(v, f)
		if f == start {
			return false
		}
	}
}

// ForEachSite calls fn for every live finite site until fn returns false.
func (t *Triangulation) ForEachSite(fn func(VertexID, geom.Point) bool) {
	for id := 1; id < len(t.verts); id++ {
		if t.verts[id].alive {
			if !fn(VertexID(id), t.verts[id].p) {
				return
			}
		}
	}
}

// ForEachFiniteFace calls fn for every finite face (counterclockwise vertex
// triple) until fn returns false. Only meaningful in dimension 2.
func (t *Triangulation) ForEachFiniteFace(fn func(a, b, c VertexID) bool) {
	for id := range t.faces {
		fc := &t.faces[id]
		if fc.alive && fc.v[0] != Infinite && fc.v[1] != Infinite && fc.v[2] != Infinite {
			if !fn(fc.v[0], fc.v[1], fc.v[2]) {
				return
			}
		}
	}
}

// FacesAround calls fn for each face incident to v in counterclockwise
// order. fn receives the face's vertices with v first. Infinite faces are
// included (one of b, c is Infinite). Only valid in dimension 2.
func (t *Triangulation) FacesAround(v VertexID, fn func(a, b, c VertexID) bool) {
	if !t.Alive(v) || t.dim < 2 {
		return
	}
	start := t.verts[v].face
	f := start
	for {
		i := t.vertIndex(f, v)
		fc := &t.faces[f]
		if !fn(v, fc.v[(i+1)%3], fc.v[(i+2)%3]) {
			return
		}
		f = t.ccwNextAround(v, f)
		if f == start {
			return
		}
	}
}

// lineIndex returns the index of v in the degenerate-mode chain, or -1.
func (t *Triangulation) lineIndex(v VertexID) int {
	for i, u := range t.line {
		if u == v {
			return i
		}
	}
	return -1
}

// lexLess orders points lexicographically; along a common line this is a
// monotone (hence linear) order, used by the degenerate mode.
func lexLess(p, q geom.Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}
