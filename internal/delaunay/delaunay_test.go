package delaunay

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"voronet/internal/geom"
)

func mustInsert(t *testing.T, tr *Triangulation, p geom.Point) VertexID {
	t.Helper()
	v, err := tr.Insert(p, NoVertex)
	if err != nil {
		t.Fatalf("Insert(%v): %v", p, err)
	}
	return v
}

func mustValidate(t *testing.T, tr *Triangulation, ctx string) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

func TestEmptyAndLowDimensions(t *testing.T) {
	tr := New()
	mustValidate(t, tr, "empty")
	if tr.Dimension() != -1 || tr.NumSites() != 0 {
		t.Fatalf("empty: dim=%d n=%d", tr.Dimension(), tr.NumSites())
	}

	a := mustInsert(t, tr, geom.Pt(0.5, 0.5))
	mustValidate(t, tr, "one site")
	if tr.Dimension() != 0 {
		t.Fatalf("dim after 1 site: %d", tr.Dimension())
	}
	if got := tr.NearestSite(geom.Pt(0.9, 0.9), NoVertex); got != a {
		t.Fatalf("nearest with one site: %d", got)
	}

	b := mustInsert(t, tr, geom.Pt(0.7, 0.5))
	mustValidate(t, tr, "two sites")
	if tr.Dimension() != 1 {
		t.Fatalf("dim after 2 sites: %d", tr.Dimension())
	}
	if nb := tr.Neighbors(a, nil); len(nb) != 1 || nb[0] != b {
		t.Fatalf("chain neighbours of a: %v", nb)
	}

	// Collinear third and fourth points keep dimension 1.
	mustInsert(t, tr, geom.Pt(0.6, 0.5))
	mustInsert(t, tr, geom.Pt(0.1, 0.5))
	mustValidate(t, tr, "collinear chain")
	if tr.Dimension() != 1 {
		t.Fatalf("dim after collinear inserts: %d", tr.Dimension())
	}
	// Chain neighbours are line-adjacent sites.
	mid := tr.NearestSite(geom.Pt(0.61, 0.5), NoVertex)
	if got := tr.Point(mid); got != geom.Pt(0.6, 0.5) {
		t.Fatalf("nearest on chain: %v", got)
	}
	if nb := tr.Neighbors(mid, nil); len(nb) != 2 {
		t.Fatalf("chain interior neighbours: %v", nb)
	}

	// Off-line point upgrades to a full triangulation.
	mustInsert(t, tr, geom.Pt(0.4, 0.9))
	mustValidate(t, tr, "dimension upgrade")
	if tr.Dimension() != 2 {
		t.Fatalf("dim after upgrade: %d", tr.Dimension())
	}
	if tr.NumSites() != 5 {
		t.Fatalf("site count after upgrade: %d", tr.NumSites())
	}
}

func TestDuplicateInsert(t *testing.T) {
	tr := New()
	a := mustInsert(t, tr, geom.Pt(0.2, 0.2))
	mustInsert(t, tr, geom.Pt(0.8, 0.2))
	mustInsert(t, tr, geom.Pt(0.5, 0.8))

	got, err := tr.Insert(geom.Pt(0.2, 0.2), NoVertex)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if got != a {
		t.Fatalf("duplicate should return existing id %d, got %d", a, got)
	}
	if tr.NumSites() != 3 {
		t.Fatalf("duplicate insert changed site count: %d", tr.NumSites())
	}
	mustValidate(t, tr, "after duplicate")

	// Duplicate in degenerate mode too.
	tr2 := New()
	b := mustInsert(t, tr2, geom.Pt(0.1, 0.1))
	if got, err := tr2.Insert(geom.Pt(0.1, 0.1), NoVertex); !errors.Is(err, ErrDuplicate) || got != b {
		t.Fatalf("low-dim duplicate: got %d, %v", got, err)
	}
}

func TestInsertOnEdgeAndVertexLocations(t *testing.T) {
	tr := New()
	mustInsert(t, tr, geom.Pt(0, 0))
	mustInsert(t, tr, geom.Pt(1, 0))
	mustInsert(t, tr, geom.Pt(0, 1))
	mustValidate(t, tr, "triangle")

	// Strictly inside.
	loc := tr.Locate(geom.Pt(0.25, 0.25), NoVertex)
	if loc.Kind != LocFace {
		t.Fatalf("inside: kind %v", loc.Kind)
	}
	// On the interior of an edge.
	loc = tr.Locate(geom.Pt(0.5, 0.5), NoVertex)
	if loc.Kind != LocEdge {
		t.Fatalf("on hypotenuse: kind %v", loc.Kind)
	}
	// On a vertex.
	loc = tr.Locate(geom.Pt(1, 0), NoVertex)
	if loc.Kind != LocVertex {
		t.Fatalf("on vertex: kind %v", loc.Kind)
	}
	// Outside.
	loc = tr.Locate(geom.Pt(2, 2), NoVertex)
	if loc.Kind != LocOutside {
		t.Fatalf("outside: kind %v", loc.Kind)
	}

	// Insert exactly on the hypotenuse.
	mustInsert(t, tr, geom.Pt(0.5, 0.5))
	mustValidate(t, tr, "on-edge insert")
	// Insert exactly on a hull edge's line, beyond the segment.
	mustInsert(t, tr, geom.Pt(2, 0))
	mustValidate(t, tr, "collinear outside insert")
	// And exactly between, on the hull edge.
	mustInsert(t, tr, geom.Pt(0.5, 0))
	mustValidate(t, tr, "on-hull-edge insert")
	if tr.NumSites() != 6 {
		t.Fatalf("site count %d", tr.NumSites())
	}
}

func TestCocircularGridInsert(t *testing.T) {
	// A k×k integer grid: every unit square is co-circular; the exact
	// predicates must keep the structure consistent.
	tr := New()
	const k = 8
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			mustInsert(t, tr, geom.Pt(float64(i), float64(j)))
		}
	}
	mustValidate(t, tr, "grid")
	if tr.NumSites() != k*k {
		t.Fatalf("sites: %d", tr.NumSites())
	}
}

func TestNeighborsAgainstBruteForce(t *testing.T) {
	// The Delaunay edge (u,v) exists iff some circle through u and v is
	// empty. Cross-check small random instances against an O(n^4)
	// brute-force Delaunay construction via the InCircle predicate.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(9)
		pts := make([]geom.Point, n)
		ids := make([]VertexID, n)
		tr := New()
		for i := range pts {
			for {
				p := geom.Pt(rng.Float64(), rng.Float64())
				if v, err := tr.Insert(p, NoVertex); err == nil {
					pts[i] = p
					ids[i] = v
					break
				}
			}
		}
		mustValidate(t, tr, "random instance")

		adj := bruteForceDelaunayEdges(pts)
		for i := 0; i < n; i++ {
			got := tr.Neighbors(ids[i], nil)
			var gotIdx []int
			for _, v := range got {
				for j := range ids {
					if ids[j] == v {
						gotIdx = append(gotIdx, j)
					}
				}
			}
			sort.Ints(gotIdx)
			want := adj[i]
			sort.Ints(want)
			if len(gotIdx) != len(want) {
				t.Fatalf("trial %d vertex %d: neighbours %v, want %v (pts %v)", trial, i, gotIdx, want, pts)
			}
			for k := range want {
				if gotIdx[k] != want[k] {
					t.Fatalf("trial %d vertex %d: neighbours %v, want %v", trial, i, gotIdx, want)
				}
			}
		}
	}
}

// bruteForceDelaunayEdges computes Delaunay adjacency for points in general
// position by testing all triangles: edge (i,j) is Delaunay iff it belongs
// to a triangle whose circumcircle is empty, or (hull edge) iff a halfplane
// is empty. For simplicity this assumes no 4 co-circular points, which
// holds almost surely for random floats.
func bruteForceDelaunayEdges(pts []geom.Point) [][]int {
	n := len(pts)
	adj := make([][]int, n)
	addEdge := func(i, j int) {
		for _, k := range adj[i] {
			if k == j {
				return
			}
		}
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				a, b, c := pts[i], pts[j], pts[k]
				o := geom.Orient2D(a, b, c)
				if o == 0 {
					continue
				}
				if o < 0 {
					b, c = c, b
				}
				empty := true
				for l := 0; l < n; l++ {
					if l == i || l == j || l == k {
						continue
					}
					if geom.InCircle(a, b, c, pts[l]) > 0 {
						empty = false
						break
					}
				}
				if empty {
					addEdge(i, j)
					addEdge(j, k)
					addEdge(i, k)
				}
			}
		}
	}
	return adj
}

func TestRemoveInterior(t *testing.T) {
	tr := New()
	mustInsert(t, tr, geom.Pt(0, 0))
	mustInsert(t, tr, geom.Pt(1, 0))
	mustInsert(t, tr, geom.Pt(1, 1))
	mustInsert(t, tr, geom.Pt(0, 1))
	c := mustInsert(t, tr, geom.Pt(0.5, 0.5))
	mustValidate(t, tr, "square plus centre")

	if err := tr.Remove(c); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	mustValidate(t, tr, "after interior removal")
	if tr.NumSites() != 4 {
		t.Fatalf("sites: %d", tr.NumSites())
	}
	if tr.Alive(c) {
		t.Fatal("removed vertex still alive")
	}
}

func TestRemoveHullVertex(t *testing.T) {
	tr := New()
	ids := []VertexID{
		mustInsert(t, tr, geom.Pt(0, 0)),
		mustInsert(t, tr, geom.Pt(1, 0)),
		mustInsert(t, tr, geom.Pt(1, 1)),
		mustInsert(t, tr, geom.Pt(0, 1)),
		mustInsert(t, tr, geom.Pt(0.5, 0.5)),
		mustInsert(t, tr, geom.Pt(0.5, -0.8)),
	}
	mustValidate(t, tr, "hexa")
	// Remove the bottom spike (a hull vertex with pockets behind it).
	if err := tr.Remove(ids[5]); err != nil {
		t.Fatalf("Remove hull: %v", err)
	}
	mustValidate(t, tr, "after hull removal")
	// Remove a corner.
	if err := tr.Remove(ids[0]); err != nil {
		t.Fatalf("Remove corner: %v", err)
	}
	mustValidate(t, tr, "after corner removal")
	if tr.NumSites() != 4 {
		t.Fatalf("sites: %d", tr.NumSites())
	}
}

func TestRemoveDowngradesDimension(t *testing.T) {
	tr := New()
	a := mustInsert(t, tr, geom.Pt(0, 0))
	b := mustInsert(t, tr, geom.Pt(1, 0))
	cc := mustInsert(t, tr, geom.Pt(2, 0))
	d := mustInsert(t, tr, geom.Pt(1, 1))
	mustValidate(t, tr, "three collinear plus apex")

	// Removing the apex leaves three collinear sites: dimension drops to 1.
	if err := tr.Remove(d); err != nil {
		t.Fatalf("Remove apex: %v", err)
	}
	mustValidate(t, tr, "after downgrade")
	if tr.Dimension() != 1 {
		t.Fatalf("dim: %d", tr.Dimension())
	}
	if nb := tr.Neighbors(b, nil); len(nb) != 2 {
		t.Fatalf("chain neighbours: %v", nb)
	}
	_ = a
	_ = cc

	// Continue down to empty.
	if err := tr.Remove(b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(cc); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tr, "empty again")
	if tr.NumSites() != 0 || tr.Dimension() != -1 {
		t.Fatalf("n=%d dim=%d", tr.NumSites(), tr.Dimension())
	}
	if err := tr.Remove(b); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestNearestSite(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(4))
	var pts []geom.Point
	var ids []VertexID
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		v, err := tr.Insert(p, NoVertex)
		if err != nil {
			continue
		}
		pts = append(pts, p)
		ids = append(ids, v)
	}
	for q := 0; q < 500; q++ {
		// Mix of inside and outside queries.
		p := geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
		got := tr.NearestSite(p, NoVertex)
		best, bestD := NoVertex, 0.0
		for i, pt := range pts {
			d := geom.Dist2(p, pt)
			if best == NoVertex || d < bestD {
				best, bestD = ids[i], d
			}
		}
		if geom.Dist2(p, tr.Point(got)) != bestD {
			t.Fatalf("NearestSite(%v): got %v (d=%g) want %v (d=%g)",
				p, tr.Point(got), geom.Dist2(p, tr.Point(got)), tr.Point(best), bestD)
		}
	}
}

func TestRandomChurnMaintainsDelaunay(t *testing.T) {
	// The central stress test: interleaved random inserts and removals with
	// full validation. This is exactly the access pattern of the VoroNet
	// protocol (fictive objects are inserted and removed on every routing
	// operation).
	rng := rand.New(rand.NewSource(31337))
	tr := New()
	var live []VertexID
	for step := 0; step < 1200; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			var p geom.Point
			switch rng.Intn(4) {
			case 0: // uniform
				p = geom.Pt(rng.Float64(), rng.Float64())
			case 1: // clustered
				p = geom.Pt(0.5+rng.NormFloat64()*1e-3, 0.5+rng.NormFloat64()*1e-3)
			case 2: // grid (heavy degeneracy)
				p = geom.Pt(float64(rng.Intn(12))/12, float64(rng.Intn(12))/12)
			default: // collinear band
				p = geom.Pt(rng.Float64(), 0.25)
			}
			v, err := tr.Insert(p, NoVertex)
			if err == nil {
				live = append(live, v)
			} else if !errors.Is(err, ErrDuplicate) {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			i := rng.Intn(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := tr.Remove(v); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
		}
		if step%25 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d (n=%d): %v", step, tr.NumSites(), err)
			}
		}
	}
	mustValidate(t, tr, "final churn state")
	if tr.NumSites() != len(live) {
		t.Fatalf("site count drift: %d vs %d", tr.NumSites(), len(live))
	}
	// Drain to empty, validating periodically.
	for i, v := range live {
		if err := tr.Remove(v); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if i%10 == 0 {
			mustValidate(t, tr, "drain")
		}
	}
	mustValidate(t, tr, "drained")
}

func TestGridChurn(t *testing.T) {
	// Insert a grid, remove every other point including hull vertices, all
	// under degeneracy (cocircular squares, collinear hull chains).
	tr := New()
	const k = 7
	ids := map[[2]int]VertexID{}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			ids[[2]int{i, j}] = mustInsert(t, tr, geom.Pt(float64(i), float64(j)))
		}
	}
	mustValidate(t, tr, "grid")
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if (i+j)%2 == 0 {
				if err := tr.Remove(ids[[2]int{i, j}]); err != nil {
					t.Fatalf("remove (%d,%d): %v", i, j, err)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("after removing (%d,%d): %v", i, j, err)
				}
			}
		}
	}
}

func TestGridFullDrain(t *testing.T) {
	// Remove every grid point in pseudo-random order down to the empty
	// structure, validating continuously: exercises co-circular cavity
	// fills, collinear hull chains, pocket retriangulation and both
	// dimension downgrades.
	tr := New()
	const k = 6
	var ids []VertexID
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			ids = append(ids, mustInsert(t, tr, geom.Pt(float64(i), float64(j))))
		}
	}
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
	for i, v := range ids {
		if err := tr.Remove(v); err != nil {
			t.Fatalf("remove %d/%d: %v", i, len(ids), err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after remove %d/%d: %v", i, len(ids), err)
		}
	}
	if tr.NumSites() != 0 || tr.Dimension() != -1 {
		t.Fatalf("drained state: n=%d dim=%d", tr.NumSites(), tr.Dimension())
	}
}

func TestCocircularRingChurn(t *testing.T) {
	// Points on a common circle: the most degenerate configuration for
	// InCircle (every 4-tuple is co-circular) and the one the paper calls
	// out for vn(o) ("if all objects lie on a circle centered at o, then
	// all the objects will belong to vn(o)").
	tr := New()
	centre := mustInsert(t, tr, geom.Pt(0.5, 0.5))
	var ring []VertexID
	const m = 24
	for i := 0; i < m; i++ {
		th := 2 * math.Pi * float64(i) / m
		// Snap to a grid so many points are exactly co-circular in floats.
		x := 0.5 + 0.25*math.Cos(th)
		y := 0.5 + 0.25*math.Sin(th)
		ring = append(ring, mustInsert(t, tr, geom.Pt(x, y)))
	}
	mustValidate(t, tr, "ring")
	// The centre must be adjacent to many ring points.
	if d := tr.Degree(centre); d < m/2 {
		t.Fatalf("centre degree %d, want close to %d", d, m)
	}
	// Remove the centre: the ring alone retriangulates (arbitrarily, since
	// everything is co-circular) but must stay structurally Delaunay.
	if err := tr.Remove(centre); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tr, "ring without centre")
	// Remove half the ring.
	for i, v := range ring {
		if i%2 == 0 {
			if err := tr.Remove(v); err != nil {
				t.Fatal(err)
			}
			mustValidate(t, tr, "ring churn")
		}
	}
}

func TestHullCollinearChurn(t *testing.T) {
	// Many collinear points on the hull; removals along the boundary line.
	tr := New()
	var bottom []VertexID
	for i := 0; i <= 10; i++ {
		bottom = append(bottom, mustInsert(t, tr, geom.Pt(float64(i)/10, 0)))
	}
	mustInsert(t, tr, geom.Pt(0.3, 0.7))
	mustInsert(t, tr, geom.Pt(0.7, 0.4))
	mustValidate(t, tr, "comb")
	for _, v := range bottom[2:9] {
		if err := tr.Remove(v); err != nil {
			t.Fatalf("remove bottom: %v", err)
		}
		mustValidate(t, tr, "bottom removal")
	}
}

func TestVertexIDRecycling(t *testing.T) {
	tr := New()
	a := mustInsert(t, tr, geom.Pt(0, 0))
	mustInsert(t, tr, geom.Pt(1, 0))
	mustInsert(t, tr, geom.Pt(0, 1))
	mustInsert(t, tr, geom.Pt(1, 1))
	if err := tr.Remove(a); err != nil {
		t.Fatal(err)
	}
	b := mustInsert(t, tr, geom.Pt(0.2, 0.3))
	if b != a {
		t.Logf("note: id not recycled immediately (got %d, freed %d) — allowed", b, a)
	}
	if !tr.Alive(b) {
		t.Fatal("fresh vertex not alive")
	}
	mustValidate(t, tr, "after recycle")
}

func TestIsHullVertex(t *testing.T) {
	tr := New()
	corners := []VertexID{
		mustInsert(t, tr, geom.Pt(0, 0)),
		mustInsert(t, tr, geom.Pt(1, 0)),
		mustInsert(t, tr, geom.Pt(1, 1)),
		mustInsert(t, tr, geom.Pt(0, 1)),
	}
	centre := mustInsert(t, tr, geom.Pt(0.5, 0.5))
	for _, c := range corners {
		if !tr.IsHullVertex(c) {
			t.Errorf("corner %d should be on hull", c)
		}
	}
	if tr.IsHullVertex(centre) {
		t.Error("centre should not be on hull")
	}
}

func TestLocateWithHint(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(5))
	var ids []VertexID
	for i := 0; i < 300; i++ {
		if v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex); err == nil {
			ids = append(ids, v)
		}
	}
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		hint := ids[rng.Intn(len(ids))]
		locA := tr.Locate(p, hint)
		locB := tr.Locate(p, NoVertex)
		if locA.Kind != locB.Kind {
			t.Fatalf("hint changes location kind: %v vs %v", locA.Kind, locB.Kind)
		}
		if locA.Kind == LocFace && locA.Face != locB.Face {
			t.Fatalf("hint changes located face")
		}
	}
}

func TestForEachIteration(t *testing.T) {
	tr := New()
	mustInsert(t, tr, geom.Pt(0, 0))
	mustInsert(t, tr, geom.Pt(1, 0))
	mustInsert(t, tr, geom.Pt(0, 1))
	mustInsert(t, tr, geom.Pt(1, 1))

	sites := 0
	tr.ForEachSite(func(VertexID, geom.Point) bool { sites++; return true })
	if sites != 4 {
		t.Fatalf("ForEachSite visited %d", sites)
	}
	faces := 0
	tr.ForEachFiniteFace(func(a, b, c VertexID) bool {
		faces++
		o := geom.Orient2D(tr.Point(a), tr.Point(b), tr.Point(c))
		if o <= 0 {
			t.Fatalf("non-ccw face in iteration")
		}
		return true
	})
	if faces != 2 {
		t.Fatalf("ForEachFiniteFace visited %d", faces)
	}
	// Early stop.
	n := 0
	tr.ForEachSite(func(VertexID, geom.Point) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLargeUniformInsertion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := New()
	rng := rand.New(rand.NewSource(1))
	hint := NoVertex
	for i := 0; i < 20000; i++ {
		v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), hint)
		if err == nil {
			hint = v
		}
	}
	if tr.NumSites() != 20000 {
		t.Fatalf("sites: %d", tr.NumSites())
	}
	mustValidate(t, tr, "20k uniform")
	// Average finite degree in a Delaunay triangulation is < 6.
	total := 0
	tr.ForEachSite(func(v VertexID, _ geom.Point) bool {
		total += tr.Degree(v)
		return true
	})
	avg := float64(total) / 20000
	if avg < 5 || avg > 6 {
		t.Fatalf("average degree %g out of expected range", avg)
	}
}

func BenchmarkInsertUniform(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	hint := NoVertex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), hint)
		if err == nil {
			hint = v
		}
	}
}

func BenchmarkInsertRemoveCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex)
		if err != nil {
			continue
		}
		if err := tr.Remove(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestSite(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), NoVertex)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestSite(geom.Pt(rng.Float64(), rng.Float64()), NoVertex)
	}
}
