package delaunay

import (
	"math"

	"voronet/internal/geom"
)

// LocKind classifies the result of point location.
type LocKind int

const (
	// LocFace: the query lies strictly inside a finite face.
	LocFace LocKind = iota
	// LocEdge: the query lies in the interior of a finite edge.
	LocEdge
	// LocVertex: the query coincides with a site.
	LocVertex
	// LocOutside: the query lies outside the convex hull; Face is an
	// infinite face whose hull edge strictly sees the query.
	LocOutside
)

// Location is the result of Locate.
type Location struct {
	Kind   LocKind
	Face   FaceID
	Edge   int      // for LocEdge: index (opposite vertex) of the edge in Face
	Vertex VertexID // for LocVertex: the coincident site
}

// walkRng is a tiny xorshift64 generator used to randomise the probe order
// of a visibility walk without touching the triangulation's shared RNG, so
// read-only walks stay side-effect-free and safe for concurrent callers.
type walkRng uint64

func (w *walkRng) intn3() int {
	x := uint64(*w)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*w = walkRng(x)
	return int(x % 3)
}

// Locate finds the position of p in the triangulation using a remembering
// visibility walk starting near hint (a live vertex, or NoVertex to start
// from the last touched face). It requires dimension 2.
//
// The walk is guaranteed to terminate on a Delaunay triangulation; as a
// defence in depth a step budget triggers an exhaustive scan.
func (t *Triangulation) Locate(p geom.Point, hint VertexID) Location {
	return t.locateWalk(p, t.startFace(hint), nil)
}

// LocateRO is Locate without side effects: it neither advances the
// triangulation's walk RNG nor updates the last-face cache, so any number
// of goroutines may call it concurrently as long as no insertion or
// removal runs at the same time.
func (t *Triangulation) LocateRO(p geom.Point, hint VertexID) Location {
	ro := walkRng(math.Float64bits(p.X)*0x9e3779b97f4a7c15 ^ math.Float64bits(p.Y) | 1)
	return t.locateWalk(p, t.startFace(hint), &ro)
}

// startFace picks the walk's starting face from the hint (falling back to
// the last touched face, then any live face).
func (t *Triangulation) startFace(hint VertexID) FaceID {
	start := t.lastFace
	if hint != NoVertex && t.Alive(hint) && t.verts[hint].face != NoFace {
		start = t.verts[hint].face
	}
	if start == NoFace || !t.faces[start].alive {
		start = t.anyAliveFace()
	}
	return start
}

func (t *Triangulation) anyAliveFace() FaceID {
	for id := range t.faces {
		if t.faces[id].alive {
			return FaceID(id)
		}
	}
	return NoFace
}

// locateWalk runs the visibility walk. A nil ro selects the mutating mode
// (shared RNG for probe order, last-face cache updated); a non-nil ro makes
// the walk read-only, drawing probe order from ro and leaving every shared
// field untouched.
func (t *Triangulation) locateWalk(p geom.Point, start FaceID, ro *walkRng) Location {
	f := start
	// If we start on an infinite face, step to its finite neighbour.
	if !t.isFiniteFace(f) {
		i := t.vertIndex(f, Infinite)
		f = t.faces[f].n[i]
	}
	prev := NoFace
	maxSteps := 8*(t.nFinite+16) + 64
	for step := 0; ; step++ {
		if step > maxSteps {
			// Should be unreachable (the visibility walk terminates on
			// Delaunay triangulations); fall back to an exhaustive scan so a
			// latent bug degrades to O(n) instead of a hang.
			return t.locateExhaustive(p, ro == nil)
		}
		fc := &t.faces[f]
		if fc.v[0] == Infinite || fc.v[1] == Infinite || fc.v[2] == Infinite {
			// We crossed a hull edge strictly: p is outside.
			return Location{Kind: LocOutside, Face: f}
		}
		var orients [3]int
		moved := false
		// Randomise the edge probing order so the walk cannot cycle.
		var r int
		if ro != nil {
			r = ro.intn3()
		} else {
			r = t.rng.Intn(3)
		}
		for j := 0; j < 3; j++ {
			k := (r + j) % 3
			if fc.n[k] == prev && prev != NoFace {
				orients[k] = 1 // entry edge is strictly positive by construction
				continue
			}
			u := t.verts[fc.v[(k+1)%3]].p
			v := t.verts[fc.v[(k+2)%3]].p
			o := geom.Orient2D(u, v, p)
			orients[k] = o
			if o < 0 {
				prev = f
				f = fc.n[k]
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		// p is inside the closed triangle.
		if ro == nil {
			t.lastFace = f
		}
		zeroCount := 0
		zeroIdx := -1
		for k := 0; k < 3; k++ {
			if orients[k] == 0 {
				zeroCount++
				zeroIdx = k
			}
		}
		switch zeroCount {
		case 0:
			return Location{Kind: LocFace, Face: f}
		case 1:
			return Location{Kind: LocEdge, Face: f, Edge: zeroIdx}
		default:
			// On two edge lines at once: p coincides with the shared vertex.
			for k := 0; k < 3; k++ {
				if orients[k] != 0 {
					return Location{Kind: LocVertex, Face: f, Vertex: fc.v[k]}
				}
			}
			// All three zero is impossible for a non-degenerate face.
			return Location{Kind: LocVertex, Face: f, Vertex: fc.v[0]}
		}
	}
}

// locateExhaustive is the O(n) fallback: test every face. record controls
// whether the last-face cache is updated (false on read-only walks).
func (t *Triangulation) locateExhaustive(p geom.Point, record bool) Location {
	for id := range t.faces {
		fc := &t.faces[id]
		if !fc.alive {
			continue
		}
		if fc.v[0] == Infinite || fc.v[1] == Infinite || fc.v[2] == Infinite {
			continue
		}
		var orients [3]int
		inside := true
		for k := 0; k < 3; k++ {
			u := t.verts[fc.v[(k+1)%3]].p
			v := t.verts[fc.v[(k+2)%3]].p
			orients[k] = geom.Orient2D(u, v, p)
			if orients[k] < 0 {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		f := FaceID(id)
		if record {
			t.lastFace = f
		}
		zeroCount, zeroIdx := 0, -1
		for k := 0; k < 3; k++ {
			if orients[k] == 0 {
				zeroCount++
				zeroIdx = k
			}
		}
		switch zeroCount {
		case 0:
			return Location{Kind: LocFace, Face: f}
		case 1:
			return Location{Kind: LocEdge, Face: f, Edge: zeroIdx}
		default:
			for k := 0; k < 3; k++ {
				if orients[k] != 0 {
					return Location{Kind: LocVertex, Face: f, Vertex: fc.v[k]}
				}
			}
		}
	}
	// p is in no finite face: outside the hull. Find a strictly visible
	// hull edge.
	for id := range t.faces {
		fc := &t.faces[id]
		if !fc.alive {
			continue
		}
		i := t.vertIndex(FaceID(id), Infinite)
		if i < 0 {
			continue
		}
		u := t.verts[fc.v[(i+1)%3]].p
		v := t.verts[fc.v[(i+2)%3]].p
		if geom.Orient2D(u, v, p) > 0 {
			return Location{Kind: LocOutside, Face: FaceID(id)}
		}
	}
	// Unreachable in dimension 2: a point outside the hull always has a
	// strictly visible hull edge (tangent locations turn the hull corner).
	panic("delaunay: exhaustive location failed")
}

// NearestSite returns the live site closest to p (ties broken
// arbitrarily but deterministically), using point location plus greedy
// descent over Delaunay neighbours. hint accelerates the search.
//
// This is exactly the paper's Obj(Target): the object whose Voronoi region
// contains the point. The greedy descent is sound because in a Delaunay
// triangulation every non-nearest vertex has a neighbour strictly closer
// to the query.
func (t *Triangulation) NearestSite(p geom.Point, hint VertexID) VertexID {
	v, _ := t.nearestSite(p, hint, nil, false)
	return v
}

// NearestSiteRO is NearestSite without side effects: the location walk
// neither advances the shared RNG nor updates the last-face cache, and the
// neighbour scratch comes from the caller, so concurrent goroutines may
// resolve owners simultaneously on a frozen triangulation. It returns the
// (possibly grown) scratch buffer for reuse.
func (t *Triangulation) NearestSiteRO(p geom.Point, hint VertexID, buf []VertexID) (VertexID, []VertexID) {
	return t.nearestSite(p, hint, buf, true)
}

func (t *Triangulation) nearestSite(p geom.Point, hint VertexID, buf []VertexID, ro bool) (VertexID, []VertexID) {
	if t.nFinite == 0 {
		return NoVertex, buf
	}
	if t.dim < 2 {
		best := NoVertex
		bestD := 0.0
		for _, v := range t.line {
			d := geom.Dist2(p, t.verts[v].p)
			if best == NoVertex || d < bestD {
				best, bestD = v, d
			}
		}
		return best, buf
	}
	var loc Location
	if ro {
		loc = t.LocateRO(p, hint)
	} else {
		loc = t.Locate(p, hint)
	}
	var cur VertexID
	switch loc.Kind {
	case LocVertex:
		return loc.Vertex, buf
	default:
		fc := &t.faces[loc.Face]
		cur = NoVertex
		best := 0.0
		for k := 0; k < 3; k++ {
			if fc.v[k] == Infinite {
				continue
			}
			d := geom.Dist2(p, t.verts[fc.v[k]].p)
			if cur == NoVertex || d < best {
				cur, best = fc.v[k], d
			}
		}
	}
	// Greedy descent.
	for {
		buf = t.Neighbors(cur, buf)
		best := cur
		bestD := geom.Dist2(p, t.verts[cur].p)
		for _, u := range buf {
			if d := geom.Dist2(p, t.verts[u].p); d < bestD {
				best, bestD = u, d
			}
		}
		if best == cur {
			return cur, buf
		}
		cur = best
	}
}
