package delaunay

import "voronet/internal/geom"

// RebuildCount counts how many times Remove fell back to a full rebuild.
// The fallback preserves correctness on pathologically degenerate inputs at
// O(n) cost; it should be (and in all our workloads is) essentially never
// taken. Exposed for tests and observability.
var RebuildCount uint64

// Remove deletes site v and retriangulates the hole so the structure stays
// exactly Delaunay. This is the substrate of the paper's
// RemoveVoronoiRegion (§4.2.2) and of the fictive-object removals in
// AddObject / SearchLongLink / HandlingQuery (Algorithms 1, 2, 4).
func (t *Triangulation) Remove(v VertexID) error {
	if v == Infinite || !t.Alive(v) {
		return ErrNotFound
	}
	if t.dim < 2 {
		t.removeLowDim(v)
		return nil
	}
	if t.nFinite-1 <= 2 {
		t.nFinite--
		t.freeVertex(v)
		t.rebuildAll()
		return nil
	}

	t.collectStar(v)
	k := len(t.starV)

	// Position of the infinite vertex in the link, if any (hull site).
	infPos := -1
	for i, u := range t.starV {
		if u == Infinite {
			infPos = i
			break
		}
	}

	if infPos >= 0 {
		// Downgrade check: if the finite link chain is collinear and covers
		// every other site, the remainder is 1-dimensional.
		if k-1 == t.nFinite-1 && t.chainCollinear(infPos) {
			t.nFinite--
			t.freeVertex(v)
			t.rebuildAll()
			return nil
		}
	}

	ok := false
	if infPos < 0 {
		ok = t.removeInterior(v)
	} else {
		ok = t.removeHull(v, infPos)
	}
	if !ok {
		// Defensive fallback for degenerate link polygons the surgical path
		// declines to handle: rebuild from scratch, which is always correct.
		RebuildCount++
		t.nFinite--
		t.freeVertex(v)
		t.rebuildAll()
		return nil
	}
	t.nFinite--
	t.freeVertex(v)
	return nil
}

// collectStar fills starF with the faces around v in counterclockwise
// order and starV with the link vertices (starV[i] is the vertex such that
// starF[i] = (v, starV[i], starV[i+1]) cyclically).
func (t *Triangulation) collectStar(v VertexID) {
	t.starF = t.starF[:0]
	t.starV = t.starV[:0]
	start := t.verts[v].face
	f := start
	for {
		i := t.vertIndex(f, v)
		t.starF = append(t.starF, f)
		t.starV = append(t.starV, t.faces[f].v[(i+1)%3])
		f = t.ccwNextAround(v, f)
		if f == start {
			return
		}
	}
}

// chainCollinear reports whether the finite link chain (the link minus the
// infinite vertex at infPos) is entirely collinear.
func (t *Triangulation) chainCollinear(infPos int) bool {
	k := len(t.starV)
	var pts []geom.Point
	for j := 1; j < k; j++ {
		u := t.starV[(infPos+j)%k]
		pts = append(pts, t.verts[u].p)
	}
	for j := 2; j < len(pts); j++ {
		if geom.Orient2D(pts[0], pts[1], pts[j]) != 0 {
			return false
		}
	}
	return true
}

// outerOwner describes the face on the far side of a link edge.
type outerOwner struct {
	f   FaceID
	idx int
}

// starOuters returns, for each star face i, the face across the link edge
// (starV[i], starV[i+1]) and the edge's index in that face.
func (t *Triangulation) starOuters(v VertexID) []outerOwner {
	outs := make([]outerOwner, len(t.starF))
	for i, f := range t.starF {
		vi := t.vertIndex(f, v)
		g := t.faces[f].n[vi]
		outs[i] = outerOwner{f: g, idx: t.neighborIndex(g, f)}
	}
	return outs
}

// removeInterior handles removal of a site whose link is entirely finite.
// Returns false if the link polygon could not be ear-clipped (degenerate
// inputs; caller rebuilds).
func (t *Triangulation) removeInterior(v VertexID) bool {
	outs := t.starOuters(v)
	poly := append([]VertexID(nil), t.starV...)
	created, ok := t.fillPolygon(poly, outs)
	if !ok {
		return false
	}
	t.legalizeAmong(created)
	for _, f := range t.starF {
		t.freeFace(f)
	}
	t.lastFace = created[0]
	return true
}

// removeHull handles removal of a convex-hull site (infinite vertex in the
// link at infPos).
func (t *Triangulation) removeHull(v VertexID, infPos int) bool {
	outs := t.starOuters(v)
	k := len(t.starV)

	// Rotate so the link reads (Infinite, u_0, ..., u_m); chain[j] = u_j,
	// chainOut[j] = owner across (u_j, u_{j+1}), infOutPrev = owner across
	// (Infinite, u_0), infOutNext = owner across (u_m, Infinite).
	m := k - 2
	chain := make([]VertexID, 0, m+1)
	chainOut := make([]outerOwner, 0, m)
	for j := 1; j < k; j++ {
		chain = append(chain, t.starV[(infPos+j)%k])
	}
	for j := 1; j < k-1; j++ {
		chainOut = append(chainOut, outs[(infPos+j)%k])
	}
	infOutPrev := outs[infPos]         // across (Infinite, u_0)
	infOutNext := outs[(infPos+k-1)%k] // across (u_m, Infinite)

	// New hull chain H: Graham scan over the angularly ordered chain. A
	// chain vertex that bulges toward the removed site stays on the hull
	// (the hull retracts to it); one that dips away from it falls into a
	// pocket that must be filled with finite faces. Collinear vertices stay
	// on the hull. The link is counterclockwise around v, so "dips away"
	// means a strictly left turn along the chain.
	hull := make([]int, 0, len(chain)) // indices into chain
	for i := range chain {
		for len(hull) >= 2 {
			a := t.verts[chain[hull[len(hull)-2]]].p
			b := t.verts[chain[hull[len(hull)-1]]].p
			c := t.verts[chain[i]].p
			if geom.Orient2D(a, b, c) > 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, i)
	}

	// Build the new infinite faces, one per consecutive hull pair, filling
	// pockets with finite faces. The stored finite edge of an infinite face
	// runs clockwise along the hull, which here is increasing chain order.
	type piece struct {
		inf     FaceID
		created []FaceID
	}
	pieces := make([]piece, 0, len(hull)-1)
	allCreated := make([]FaceID, 0, 8)
	okAll := true
	for h := 0; h+1 < len(hull); h++ {
		p, q := hull[h], hull[h+1]
		infFace := t.newFace(chain[p], chain[q], Infinite)
		pc := piece{inf: infFace}
		if q == p+1 {
			// Hull edge coincides with a link edge: link straight through.
			t.link(infFace, 2, chainOut[p].f, chainOut[p].idx)
		} else {
			// Pocket: ccw polygon (u_p, ..., u_q) closed by the chord
			// (u_q -> u_p) owned by the new infinite face.
			n := q - p + 1
			poly := make([]VertexID, 0, n)
			owners := make([]outerOwner, 0, n)
			for j := p; j <= q; j++ {
				poly = append(poly, chain[j])
			}
			for i := 0; i < n-1; i++ {
				owners = append(owners, chainOut[p+i])
			}
			owners = append(owners, outerOwner{f: infFace, idx: 2})
			created, ok := t.fillPolygon(poly, owners)
			if !ok {
				okAll = false
				break
			}
			pc.created = created
			allCreated = append(allCreated, created...)
		}
		pieces = append(pieces, pc)
	}
	if !okAll {
		// Undo the partial construction and signal the rebuild fallback.
		for _, pc := range pieces {
			t.freeFace(pc.inf)
			for _, f := range pc.created {
				t.freeFace(f)
			}
		}
		return false
	}

	// Link the infinite faces to each other and to the surviving hull.
	// F_i = (H[i], H[i+1], inf): edge (H[i+1], inf) is opposite v[0] ->
	// index 0; edge (inf, H[i]) is opposite v[1] -> index 1.
	for h := 0; h+1 < len(pieces); h++ {
		t.link(pieces[h].inf, 0, pieces[h+1].inf, 1)
	}
	first := pieces[0].inf // shares (inf, u_0) with the face beyond u_0
	last := pieces[len(pieces)-1].inf
	t.link(first, 1, infOutPrev.f, infOutPrev.idx)
	t.link(last, 0, infOutNext.f, infOutNext.idx)

	t.legalizeAmong(allCreated)
	for _, f := range t.starF {
		t.freeFace(f)
	}
	t.lastFace = pieces[0].inf
	return true
}

// fillPolygon triangulates the simple counterclockwise polygon poly (all
// finite vertices) by ear clipping, linking edge i (poly[i] -> poly[i+1])
// to owners[i]. It returns the created faces and reports success; on
// failure nothing is created.
func (t *Triangulation) fillPolygon(poly []VertexID, owners []outerOwner) ([]FaceID, bool) {
	n := len(poly)
	if n < 3 {
		return nil, false
	}
	next := make([]int, n)
	prev := make([]int, n)
	owner := make([]outerOwner, n)
	for i := 0; i < n; i++ {
		next[i] = (i + 1) % n
		prev[i] = (i + n - 1) % n
		owner[i] = owners[i]
	}
	created := make([]FaceID, 0, n-2)
	fail := func() ([]FaceID, bool) {
		for _, f := range created {
			t.freeFace(f)
		}
		return nil, false
	}

	remaining := n
	cur := 0
	for remaining > 3 {
		found := false
		// Scan for a valid ear starting from cur.
		i := cur
		for tries := 0; tries < remaining; tries++ {
			a, b, c := prev[i], i, next[i]
			if t.earOK(poly, next, a, b, c) {
				// Cut ear (a, b, c): face (poly[a], poly[b], poly[c]).
				f := t.newFace(poly[a], poly[b], poly[c])
				created = append(created, f)
				// Edge (a,b) is opposite poly[c] -> index 2; (b,c) opposite
				// poly[a] -> 0; diagonal (c,a)... our face is (A,B,C) so the
				// diagonal (A,C) is edge (C,A), opposite B -> index 1.
				t.link(f, 2, owner[a].f, owner[a].idx)
				t.link(f, 0, owner[b].f, owner[b].idx)
				// Unlink b; the diagonal (a -> c) becomes boundary owned by f.
				next[a] = c
				prev[c] = a
				owner[a] = outerOwner{f: f, idx: 1}
				remaining--
				cur = a
				found = true
				break
			}
			i = next[i]
		}
		if !found {
			return fail()
		}
	}
	// Final triangle.
	a := cur
	b := next[a]
	c := next[b]
	pa, pb, pc := t.verts[poly[a]].p, t.verts[poly[b]].p, t.verts[poly[c]].p
	if geom.Orient2D(pa, pb, pc) <= 0 {
		return fail()
	}
	f := t.newFace(poly[a], poly[b], poly[c])
	created = append(created, f)
	t.link(f, 2, owner[a].f, owner[a].idx)
	t.link(f, 0, owner[b].f, owner[b].idx)
	t.link(f, 1, owner[c].f, owner[c].idx)
	return created, true
}

// earOK reports whether (a, b, c) — consecutive active polygon indices —
// form a valid ear: strictly convex and containing no other active vertex
// in the closed triangle or on the open diagonal.
func (t *Triangulation) earOK(poly []VertexID, next []int, a, b, c int) bool {
	pa := t.verts[poly[a]].p
	pb := t.verts[poly[b]].p
	pc := t.verts[poly[c]].p
	if geom.Orient2D(pa, pb, pc) <= 0 {
		return false
	}
	for w := next[c]; w != a; w = next[w] {
		pw := t.verts[poly[w]].p
		o1 := geom.Orient2D(pa, pb, pw)
		o2 := geom.Orient2D(pb, pc, pw)
		o3 := geom.Orient2D(pc, pa, pw)
		// Strictly inside, or anywhere on the closed triangle boundary
		// (which, for a vertex of a valid triangulation, can only be the
		// diagonal): both block the ear.
		if o1 >= 0 && o2 >= 0 && o3 >= 0 {
			return false
		}
	}
	return true
}

// legalizeAmong restores the Delaunay property inside a freshly filled
// region by Lawson flips. Only edges between two faces of the region are
// flipped; the region boundary is fixed.
func (t *Triangulation) legalizeAmong(created []FaceID) {
	if len(created) < 2 {
		return
	}
	in := make(map[FaceID]bool, len(created))
	for _, f := range created {
		in[f] = true
	}
	type edge struct {
		f FaceID
		k int
	}
	var stack []edge
	for _, f := range created {
		for k := 0; k < 3; k++ {
			if in[t.faces[f].n[k]] {
				stack = append(stack, edge{f, k})
			}
		}
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f := e.f
		g := t.faces[f].n[e.k]
		if !in[g] {
			continue
		}
		// Shared edge may have rotated away due to earlier flips; re-derive.
		j := -1
		for kk := 0; kk < 3; kk++ {
			if t.faces[g].n[kk] == f {
				j = kk
				break
			}
		}
		if j < 0 {
			continue // no longer adjacent
		}
		fi := t.neighborIndex(f, g)
		d := t.faces[g].v[j]
		fa := t.faces[f].v[0]
		fb := t.faces[f].v[1]
		fc := t.faces[f].v[2]
		if d == Infinite || fa == Infinite || fb == Infinite || fc == Infinite {
			continue
		}
		if geom.InCircle(t.verts[fa].p, t.verts[fb].p, t.verts[fc].p, t.verts[d].p) <= 0 {
			continue
		}
		if !t.flipEdge(f, fi) {
			continue
		}
		for k := 0; k < 3; k++ {
			if in[t.faces[f].n[k]] {
				stack = append(stack, edge{f, k})
			}
			if in[t.faces[g].n[k]] {
				stack = append(stack, edge{g, k})
			}
		}
	}
}

// flipEdge flips the edge of f at index i (shared with g), replacing faces
// f=(v, a, b), g=(d, b, a) by f=(v, a, d), g=(v, d, b). Face IDs are
// preserved. Returns false if the quad is not strictly convex (flip would
// create a degenerate or inverted face).
func (t *Triangulation) flipEdge(f FaceID, i int) bool {
	g := t.faces[f].n[i]
	j := t.neighborIndex(g, f)

	vv := t.faces[f].v[i]
	a := t.faces[f].v[(i+1)%3]
	b := t.faces[f].v[(i+2)%3]
	d := t.faces[g].v[j]

	pv := t.verts[vv].p
	pa := t.verts[a].p
	pb := t.verts[b].p
	pd := t.verts[d].p
	// New faces (v, a, d) and (v, d, b) must both be strictly ccw.
	if geom.Orient2D(pv, pa, pd) <= 0 || geom.Orient2D(pv, pd, pb) <= 0 {
		return false
	}

	// Outer neighbours before rewiring.
	fa := t.faces[f].n[(i+1)%3] // across (b, v)
	fb := t.faces[f].n[(i+2)%3] // across (v, a)
	ga := t.faces[g].n[(j+1)%3] // across (a, d)
	gb := t.faces[g].n[(j+2)%3] // across (d, b)

	t.faces[f].v = [3]VertexID{vv, a, d}
	t.faces[g].v = [3]VertexID{vv, d, b}
	// f edges: opp v=(a,d)->ga; opp a=(d,v)->g; opp d=(v,a)->fb.
	t.faces[f].n = [3]FaceID{ga, g, fb}
	t.faces[g].n = [3]FaceID{gb, fa, f}
	// Fix back-pointers of the outer neighbours.
	t.faces[ga].n[t.neighborIndex(ga, g)] = f
	t.faces[fa].n[t.neighborIndex(fa, f)] = g
	// fb still points to f, gb still points to g.

	t.verts[vv].face = f
	t.verts[a].face = f
	t.verts[d].face = f
	t.verts[b].face = g
	return true
}

// removeLowDim removes a site while in degenerate (dim < 2) mode.
func (t *Triangulation) removeLowDim(v VertexID) {
	idx := t.lineIndex(v)
	t.line = append(t.line[:idx], t.line[idx+1:]...)
	t.freeVertex(v)
	t.nFinite--
	switch {
	case len(t.line) == 0:
		t.dim = -1
	case len(t.line) == 1:
		t.dim = 0
	default:
		t.dim = 1
	}
}

// rebuildAll reconstructs the whole structure from the live sites. Always
// correct; used for dimension transitions and as the degenerate-removal
// fallback.
func (t *Triangulation) rebuildAll() {
	var sites []VertexID
	for id := 1; id < len(t.verts); id++ {
		if t.verts[id].alive {
			sites = append(sites, VertexID(id))
			t.verts[id].face = NoFace
		}
	}
	t.verts[Infinite].face = NoFace
	t.faces = t.faces[:0]
	t.freeFaces = t.freeFaces[:0]
	t.line = t.line[:0]
	t.dim = -1
	t.lastFace = NoFace
	t.nFiniteFaces = 0

	hint := NoVertex
	for _, v := range sites {
		if err := t.place(v, hint); err != nil {
			// Duplicates cannot occur among formerly co-live sites.
			panic("delaunay: rebuild failed: " + err.Error())
		}
		hint = v
	}
}
