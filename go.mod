module voronet

go 1.24
